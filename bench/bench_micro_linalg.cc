// Microbenchmarks of the linear-algebra substrate (google-benchmark):
// the kernels that dominate tracker update cost.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "harness.h"
#include "linalg/matrix.h"
#include "linalg/psd_sqrt.h"
#include "linalg/spectral_norm.h"
#include "linalg/svd.h"
#include "linalg/symmetric_eigen.h"

namespace dswm {
namespace {

Matrix RandomMatrix(int n, int d, uint64_t seed) {
  Rng rng(seed);
  Matrix m(n, d);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < d; ++j) m(i, j) = rng.NextGaussian();
  }
  return m;
}

// Scoped thread-count override for the *Threads benchmark variants; every
// other benchmark runs on the default single-threaded pool.
class ThreadGuard {
 public:
  explicit ThreadGuard(int n) { ThreadPool::SetGlobalThreads(n); }
  ~ThreadGuard() { ThreadPool::SetGlobalThreads(1); }
};

Matrix RandomSymmetric(int d, uint64_t seed) {
  const Matrix a = RandomMatrix(2 * d, d, seed);
  return GramTranspose(a);
}

void BM_OuterProductUpdate(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  Matrix c(d, d);
  Rng rng(1);
  std::vector<double> v(d);
  for (double& x : v) x = rng.NextGaussian();
  for (auto _ : state) {
    c.AddOuterProduct(v.data(), 1.0);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OuterProductUpdate)->Arg(43)->Arg(128)->Arg(300)->Arg(512);

void BM_MatMul(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const Matrix a = RandomMatrix(d, d, 7);
  const Matrix b = RandomMatrix(d, d, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b).data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MatMul)->Arg(128)->Arg(512)->Unit(benchmark::kMicrosecond);

void BM_MatMulReference(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const Matrix a = RandomMatrix(d, d, 7);
  const Matrix b = RandomMatrix(d, d, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMulReference(a, b).data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MatMulReference)->Arg(128)->Arg(512)
    ->Unit(benchmark::kMicrosecond);

void BM_MatMulThreads(benchmark::State& state) {
  const int d = 512;
  const ThreadGuard guard(static_cast<int>(state.range(0)));
  const Matrix a = RandomMatrix(d, d, 7);
  const Matrix b = RandomMatrix(d, d, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b).data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MatMulThreads)->Arg(2)->Arg(4)->Unit(benchmark::kMicrosecond);

void BM_GramTranspose(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const Matrix a = RandomMatrix(d, d, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GramTranspose(a).data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GramTranspose)->Arg(128)->Arg(512)
    ->Unit(benchmark::kMicrosecond);

void BM_GramTransposeReference(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const Matrix a = RandomMatrix(d, d, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GramTransposeReference(a).data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GramTransposeReference)->Arg(128)->Arg(512)
    ->Unit(benchmark::kMicrosecond);

void BM_GramTransposeThreads(benchmark::State& state) {
  const int d = 512;
  const ThreadGuard guard(static_cast<int>(state.range(0)));
  const Matrix a = RandomMatrix(d, d, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GramTranspose(a).data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GramTransposeThreads)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMicrosecond);

void BM_Gram(benchmark::State& state) {
  // The FD shrink shape: short side of a wide sketch.
  const int n = static_cast<int>(state.range(0));
  const Matrix a = RandomMatrix(n, 512, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Gram(a).data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Gram)->Arg(64)->Arg(128)->Unit(benchmark::kMicrosecond);

void BM_GramReference(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Matrix a = RandomMatrix(n, 512, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GramReference(a).data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GramReference)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMicrosecond);

void BM_MatVec(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const Matrix m = RandomSymmetric(d, 2);
  std::vector<double> x(d, 1.0);
  std::vector<double> y(d);
  for (auto _ : state) {
    MatVec(m, x.data(), y.data());
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_MatVec)->Arg(43)->Arg(128)->Arg(512);

void BM_SymmetricEigen(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const Matrix m = RandomSymmetric(d, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SymmetricEigen(m).values.data());
  }
}
BENCHMARK(BM_SymmetricEigen)->Arg(16)->Arg(43)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMicrosecond);

void BM_ThinSvdShortSide(benchmark::State& state) {
  // The FD shrink shape: few rows, many columns.
  const int rows = static_cast<int>(state.range(0));
  const Matrix m = RandomMatrix(rows, 512, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RightSvd(m).vt.data());
  }
}
BENCHMARK(BM_ThinSvdShortSide)->Arg(16)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMicrosecond);

void BM_SpectralNormPowerIteration(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const Matrix m = RandomSymmetric(d, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SpectralNormSym(m));
  }
}
BENCHMARK(BM_SpectralNormPowerIteration)->Arg(43)->Arg(128)->Arg(512)
    ->Unit(benchmark::kMicrosecond);

void BM_PsdSqrt(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const Matrix m = RandomSymmetric(d, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PsdSqrt(m).data());
  }
}
BENCHMARK(BM_PsdSqrt)->Arg(43)->Arg(128)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace dswm

int main(int argc, char** argv) { return dswm::bench::BenchmarkMain(argc, argv); }
