// Table III: summary of datasets (rows n, dimension d, average rows per
// window, squared-norm ratio R).
//
// Paper values for reference: PAMAP (814729, 43, ~200000, 60.78),
// SYNTHETIC (500000, 300, ~100000, 3.72), WIKI (78608, 7047, ~10000,
// 2998.83). Bench scale shrinks n and (for WIKI) d; the regime each
// dataset represents -- low-d skewed, mid-d smooth, high-d sparse and
// very skewed -- is what the experiments depend on and is preserved.

#include <cstdio>

#include "harness.h"

int main() {
  using namespace dswm;
  using namespace dswm::bench;

  std::printf("Table III: summary of data sets (bench scale %.2fx)\n\n",
              BenchScale());
  std::printf("%-10s %10s %6s %14s %22s %10s\n", "dataset", "rows n", "d",
              "window (ticks)", "avg rows per window", "ratio R");

  for (const Workload& w :
       {MakePamapWorkload(), MakeSyntheticWorkload(), MakeWikiWorkload()}) {
    const DatasetSummary s = Summarize(w.rows, w.window);
    std::printf("%-10s %10d %6d %14lld %22.0f %10.2f\n", w.name.c_str(),
                s.rows, s.dim, static_cast<long long>(w.window),
                s.avg_rows_per_window, s.norm_ratio);
  }
  std::printf(
      "\npaper:     PAMAP 814729x43 ~200000/window R=60.78 | SYNTHETIC "
      "500000x300 ~100000/window R=3.72 | WIKI 78608x7047 ~10000/window "
      "R=2998.83\n");
  return 0;
}
