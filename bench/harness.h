// Shared benchmark harness: bench-scale workloads, sweeps, and the
// paper-style table printer used by every figure/table binary.
//
// Workload sizes default to a "bench scale" that reproduces each figure's
// shape on a single machine in minutes; set DSWM_BENCH_SCALE=1.0 for the
// paper-sized streams (see EXPERIMENTS.md).

#ifndef DSWM_BENCH_HARNESS_H_
#define DSWM_BENCH_HARNESS_H_

#include <string>
#include <vector>

#include "core/tracker_factory.h"
#include "monitor/driver.h"
#include "stream/row_stream.h"

namespace dswm::bench {

/// A materialized dataset plus its evaluation window.
struct Workload {
  std::string name;
  std::vector<TimedRow> rows;
  int dim = 0;
  Timestamp window = 1;
};

/// Scale multiplier from DSWM_BENCH_SCALE (default 1.0 = bench scale).
double BenchScale();

/// Path from DSWM_BENCH_JSON, or nullptr when unset/empty. When set, every
/// bench binary leaves a machine-readable JSON trace there in addition to
/// its stdout tables, so successive PRs can diff perf trajectories.
const char* BenchJsonPath();

/// True when DSWM_BENCH_METRICS is set (and not "0"): RunCell (and
/// BenchmarkMain, for the google-benchmark micro benches) enables the obs
/// registry, and each series cell carries a "metrics" object (per-phase
/// spans + counters) in the DSWM_BENCH_JSON document. Off by default so
/// baselines stay byte-identical.
bool BenchMetricsEnabled();

/// Drop-in replacement for BENCHMARK_MAIN() used by the google-benchmark
/// micro benches: when DSWM_BENCH_JSON is set (and the caller did not pass
/// its own --benchmark_out), injects
///   --benchmark_out=<path> --benchmark_out_format=json
/// before benchmark::Initialize so the run is captured as JSON.
int BenchmarkMain(int argc, char** argv);

/// PAMAP-like: d=43, bench scale ~200k rows, window ~50k rows.
Workload MakePamapWorkload();
/// SYNTHETIC: bench scale d=128, ~80k rows, window ~16k rows
/// (paper scale: d=300, 500k rows, window ~100k rows at scale >= 4).
Workload MakeSyntheticWorkload();
/// WIKI-like: d=512 sparse, bench scale ~30k rows, window ~6k rows.
Workload MakeWikiWorkload();

/// Keeps only the first `fraction` of a workload's rows (steady state is
/// reached after ~1.5 windows; space panels use this to save time).
Workload Truncate(Workload workload, double fraction);

/// The epsilon sweep used across figures 1-4.
std::vector<double> EpsilonSweep();
/// The site-count sweep of figures 1(e,f) and 2(e,f).
std::vector<int> SiteSweep();

/// Runs one (algorithm, epsilon, sites) cell over a workload.
RunResult RunCell(Algorithm algorithm, const Workload& workload, double eps,
                  int num_sites, uint64_t seed = 1);

/// Prints one row of a paper-style series table.
void PrintSeriesHeader();
void PrintSeriesRow(const std::string& dataset, const std::string& algorithm,
                    double eps, int num_sites, const RunResult& result);

/// Runs the full six-panel figure (error/comm vs eps, error/comm tradeoff,
/// error/comm vs m) for one dataset, printing every series. `algorithms`
/// lists what to compare; `site_sweep` may be empty to skip panels (e)(f).
void RunFigure(const Workload& workload, const std::vector<Algorithm>& algorithms,
               const std::vector<double>& eps_sweep,
               const std::vector<int>& site_sweep, double default_eps,
               int default_sites);

}  // namespace dswm::bench

#endif  // DSWM_BENCH_HARNESS_H_
