#include "harness.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "stream/pamap_like.h"
#include "stream/synthetic.h"
#include "stream/wiki_like.h"

namespace dswm::bench {

bool BenchMetricsEnabled() {
  const char* env = std::getenv("DSWM_BENCH_METRICS");
  return env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0;
}

double BenchScale() {
  const char* env = std::getenv("DSWM_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double s = std::atof(env);
  return s > 0.0 ? s : 1.0;
}

const char* BenchJsonPath() {
  const char* env = std::getenv("DSWM_BENCH_JSON");
  return (env != nullptr && env[0] != '\0') ? env : nullptr;
}

int BenchmarkMain(int argc, char** argv) {
  // The same DSWM_BENCH_METRICS switch that RunCell honors: micro benches
  // then exercise the enabled instrumentation path (the overhead smoke in
  // tools/run_checks.sh compares this against the disabled default).
  if (BenchMetricsEnabled()) obs::SetEnabled(true);
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true;
  }
  // Injected flags must outlive Initialize; keep them in static storage.
  static std::string out_flag;
  static std::string fmt_flag;
  if (BenchJsonPath() != nullptr && !has_out) {
    out_flag = std::string("--benchmark_out=") + BenchJsonPath();
    fmt_flag = "--benchmark_out_format=json";
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int count = static_cast<int>(args.size());
  benchmark::Initialize(&count, args.data());
  if (benchmark::ReportUnrecognizedArguments(count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  // google-benchmark's void Shutdown(), not ProcessSupervisor's
  // Status-returning one -- the name-based symbol table cannot tell.
  benchmark::Shutdown();  // dswm-semlint: allow(discarded-status)
  return 0;
}

namespace {

// Figure/table binaries do not run under google-benchmark, so PrintSeriesRow
// accumulates every series cell here and an atexit hook writes them to
// DSWM_BENCH_JSON in one document.
struct SeriesCell {
  std::string dataset;
  std::string algorithm;
  double eps;
  int num_sites;
  RunResult result;
};

std::vector<SeriesCell>& SeriesLog() {
  static std::vector<SeriesCell> log;
  return log;
}

void FlushSeriesJson() {
  const char* path = BenchJsonPath();
  if (path == nullptr || SeriesLog().empty()) return;
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return;
  std::fprintf(f, "{\n  \"context\": {\"bench_scale\": %.6g},\n  \"series\": [\n",
               BenchScale());
  const std::vector<SeriesCell>& log = SeriesLog();
  for (size_t i = 0; i < log.size(); ++i) {
    const SeriesCell& c = log[i];
    std::fprintf(
        f,
        "    {\"dataset\": \"%s\", \"algorithm\": \"%s\", \"eps\": %.6g, "
        "\"sites\": %d, \"avg_err\": %.9g, \"max_err\": %.9g, "
        "\"words_per_window\": %.9g, \"max_site_space_words\": %ld, "
        "\"update_rows_per_sec\": %.9g",
        c.dataset.c_str(), c.algorithm.c_str(), c.eps, c.num_sites,
        c.result.avg_err, c.result.max_err, c.result.words_per_window,
        c.result.max_site_space_words, c.result.update_rows_per_sec);
    // Per-phase profiles ride along only when DSWM_BENCH_METRICS was set,
    // so existing baselines stay byte-identical with metrics off.
    if (!c.result.metrics.empty()) {
      std::fprintf(f, ", \"metrics\": %s", c.result.metrics.ToJson().c_str());
    }
    std::fprintf(f, "}%s\n", i + 1 < log.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

void RecordSeries(const std::string& dataset, const std::string& algorithm,
                  double eps, int num_sites, const RunResult& result) {
  if (BenchJsonPath() == nullptr) return;
  if (SeriesLog().empty()) std::atexit(FlushSeriesJson);
  SeriesLog().push_back(SeriesCell{dataset, algorithm, eps, num_sites, result});
}

}  // namespace

Workload MakePamapWorkload() {
  const double scale = BenchScale();
  PamapLikeConfig config;
  config.rows = static_cast<int>(200000 * scale);
  PamapLikeGenerator gen(config);
  Workload w;
  w.name = "PAMAP";
  w.rows = Materialize(&gen, config.rows);
  w.dim = config.dim;
  // Poisson(1) arrivals: ~1 row per tick, so a 50k-tick window holds ~50k
  // rows (a quarter of the stream, like the paper's 200k of 814k).
  w.window = static_cast<Timestamp>(50000 * scale);
  if (w.window < 1000) w.window = 1000;
  return w;
}

Workload MakeSyntheticWorkload() {
  const double scale = BenchScale();
  SyntheticConfig config;
  config.rows = static_cast<int>(80000 * scale);
  config.dim = scale >= 4.0 ? 300 : 128;
  SyntheticGenerator gen(config);
  Workload w;
  w.name = "SYNTHETIC";
  w.rows = Materialize(&gen, config.rows);
  w.dim = config.dim;
  w.window = static_cast<Timestamp>(16000 * scale);
  if (w.window < 1000) w.window = 1000;
  return w;
}

Workload MakeWikiWorkload() {
  const double scale = BenchScale();
  WikiLikeConfig config;
  config.rows = static_cast<int>(30000 * scale);
  WikiLikeGenerator gen(config);
  Workload w;
  w.name = "WIKI";
  w.rows = Materialize(&gen, config.rows);
  w.dim = config.dim;
  // rows_per_day = 20 => a 300-day window holds ~6000 rows.
  w.window = static_cast<Timestamp>(300 * scale);
  if (w.window < 50) w.window = 50;
  return w;
}

Workload Truncate(Workload workload, double fraction) {
  const size_t keep =
      static_cast<size_t>(workload.rows.size() * fraction);
  if (keep < workload.rows.size()) workload.rows.resize(keep);
  return workload;
}

std::vector<double> EpsilonSweep() { return {0.2, 0.15, 0.1, 0.07, 0.05}; }

std::vector<int> SiteSweep() { return {5, 10, 20, 40, 80}; }

RunResult RunCell(Algorithm algorithm, const Workload& workload, double eps,
                  int num_sites, uint64_t seed) {
  TrackerConfig config;
  config.dim = workload.dim;
  config.num_sites = num_sites;
  config.window = workload.window;
  config.epsilon = eps;
  config.seed = seed;
  auto tracker_or = MakeTracker(algorithm, config);
  DSWM_CHECK(tracker_or.ok());
  DriverOptions options;
  options.seed = seed * 7 + 13;
  if (BenchMetricsEnabled()) obs::SetEnabled(true);
  StatusOr<RunResult> run = RunTracker(tracker_or.value().get(), workload.rows,
                                       num_sites, workload.window, options);
  DSWM_CHECK(run.ok());
  return std::move(run).value();
}

void PrintSeriesHeader() {
  std::printf("%-10s %-10s %6s %4s %12s %12s %14s %12s %12s\n", "dataset",
              "algorithm", "eps", "m", "avg_err", "max_err", "msg(words/W)",
              "space(words)", "rows/s");
}

void PrintSeriesRow(const std::string& dataset, const std::string& algorithm,
                    double eps, int num_sites, const RunResult& r) {
  RecordSeries(dataset, algorithm, eps, num_sites, r);
  std::printf("%-10s %-10s %6.3f %4d %12.5f %12.5f %14.0f %12ld %12.0f\n",
              dataset.c_str(), algorithm.c_str(), eps, num_sites, r.avg_err,
              r.max_err, r.words_per_window, r.max_site_space_words,
              r.update_rows_per_sec);
  std::fflush(stdout);
}

void RunFigure(const Workload& workload,
               const std::vector<Algorithm>& algorithms,
               const std::vector<double>& eps_sweep,
               const std::vector<int>& site_sweep, double default_eps,
               int default_sites) {
  std::printf("== %s: panels (a)-(d): sweep epsilon at m=%d ==\n",
              workload.name.c_str(), default_sites);
  PrintSeriesHeader();
  for (Algorithm a : algorithms) {
    for (double eps : eps_sweep) {
      const RunResult r = RunCell(a, workload, eps, default_sites);
      PrintSeriesRow(workload.name, AlgorithmName(a), eps, default_sites, r);
    }
  }
  if (!site_sweep.empty()) {
    std::printf("== %s: panels (e)-(f): sweep m at eps=%.2f ==\n",
                workload.name.c_str(), default_eps);
    PrintSeriesHeader();
    for (Algorithm a : algorithms) {
      for (int m : site_sweep) {
        const RunResult r = RunCell(a, workload, default_eps, m);
        PrintSeriesRow(workload.name, AlgorithmName(a), default_eps, m, r);
      }
    }
  }
}

}  // namespace dswm::bench
