// Scale-out bench: the same DA2 stream driven through the three
// runtimes (lockstep oracle, event-driven scheduler, multi-process
// socket backend) at m in {4, 8}.
//
// Reported per cell: end-to-end wall time, ingested rows/sec, and
// per-window latency (wall time divided by the windows the stream
// spans). The error/comm metrics are printed too as a cross-runtime
// sanity check -- the equivalence suite proves them bit-identical, so
// any visible difference here means a broken build.
//
// Caveat, documented in BENCH_runtime_scaleout.json as well: everything
// runs on one machine, and the process backend performs one synchronous
// socket round trip per message, so these numbers measure the *cost* of
// crossing real process boundaries, not a speedup. True scale-out (m
// machines working concurrently) needs an asynchronous delivery order
// and is out of scope for the deterministic replay contract.
//
// Regenerate the committed baseline with:
//   DSWM_BENCH_JSON=bench/BENCH_runtime_scaleout.json
//     build-release/bench/bench_runtime_scaleout  (one command line)
// then restore the _comment/_command fields (timings are informational;
// nothing compares them with tolerance).

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "harness.h"
#include "monitor/runtime.h"
#include "obs/span.h"
#include "runtime/runtime.h"

namespace dswm::bench {
namespace {

struct Cell {
  std::string runtime;
  int num_sites = 0;
  double elapsed_sec = 0.0;
  double rows_per_sec = 0.0;
  double window_latency_ms = 0.0;
  RunResult result;
};

Cell RunScaleoutCell(runtime::RuntimeKind kind, const Workload& workload,
                     int num_sites) {
  runtime::RuntimeOptions options;
  options.kind = kind;
  std::unique_ptr<Runtime> rt = runtime::MakeRuntime(options);

  TrackerConfig config;
  config.dim = workload.dim;
  config.num_sites = num_sites;
  config.window = workload.window;
  config.epsilon = 0.2;
  config.seed = 1;
  config.channel_backend = rt->backend();
  auto tracker = MakeTracker(Algorithm::kDa2, config);
  DSWM_CHECK(tracker.ok());

  DriverOptions driver_options;
  driver_options.seed = 20;

  double elapsed_sec = 0.0;
  StatusOr<RunResult> run = Status::Internal("not run");
  {
    // External-accumulator Span: always measures, even with metrics off.
    obs::Span timer("bench.scaleout.run", &elapsed_sec);
    run = rt->Run(tracker.value().get(), workload.rows, num_sites,
                  workload.window, driver_options);
  }
  DSWM_CHECK(run.ok());

  Cell cell;
  cell.runtime = rt->name();
  cell.num_sites = num_sites;
  cell.elapsed_sec = elapsed_sec;
  cell.result = std::move(run).value();
  cell.rows_per_sec = cell.result.rows / cell.elapsed_sec;
  const double windows = cell.result.windows_spanned > 0.0
                             ? cell.result.windows_spanned
                             : 1.0;
  cell.window_latency_ms = 1e3 * cell.elapsed_sec / windows;
  return cell;
}

void WriteJson(const char* path, const Workload& workload,
               const std::vector<Cell>& cells) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_runtime_scaleout: cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"workload\": \"%s\",\n  \"algorithm\": \"DA2\",\n",
               workload.name.c_str());
  std::fprintf(f, "  \"rows\": %zu,\n  \"dim\": %d,\n", workload.rows.size(),
               workload.dim);
  std::fprintf(f, "  \"cells\": [\n");
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::fprintf(
        f,
        "    {\"runtime\": \"%s\", \"sites\": %d, \"elapsed_sec\": %.4f, "
        "\"rows_per_sec\": %.0f, \"window_latency_ms\": %.2f, "
        "\"avg_err\": %.6f, \"total_words\": %ld, "
        "\"wire_transmissions\": %ld}%s\n",
        c.runtime.c_str(), c.num_sites, c.elapsed_sec, c.rows_per_sec,
        c.window_latency_ms, c.result.avg_err, c.result.total_words,
        c.result.wire_transmissions, i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

int Main() {
  // A quarter of the synthetic bench stream keeps the process backend's
  // per-message round trips in seconds, while still spanning several
  // windows of steady state.
  const Workload workload = Truncate(MakeSyntheticWorkload(), 0.25);
  std::printf("workload %s: %zu rows, dim %d, window %lld\n",
              workload.name.c_str(), workload.rows.size(), workload.dim,
              static_cast<long long>(workload.window));

  const runtime::RuntimeKind kinds[] = {runtime::RuntimeKind::kLockstep,
                                        runtime::RuntimeKind::kEvents,
                                        runtime::RuntimeKind::kProcess};
  std::vector<Cell> cells;
  std::printf("%-10s %4s %12s %12s %18s %12s %14s\n", "runtime", "m",
              "elapsed(s)", "rows/s", "window_lat(ms)", "avg_err",
              "transmissions");
  for (int m : {4, 8}) {
    for (runtime::RuntimeKind kind : kinds) {
      Cell c = RunScaleoutCell(kind, workload, m);
      std::printf("%-10s %4d %12.3f %12.0f %18.2f %12.6f %14ld\n",
                  c.runtime.c_str(), c.num_sites, c.elapsed_sec,
                  c.rows_per_sec, c.window_latency_ms, c.result.avg_err,
                  c.result.wire_transmissions);
      std::fflush(stdout);
      cells.push_back(std::move(c));
    }
    // Cross-runtime sanity: the equivalence suite proves bit-identity;
    // here we at least refuse to publish numbers from diverging runs.
    const size_t base = cells.size() - 3;
    for (size_t i = base + 1; i < cells.size(); ++i) {
      DSWM_CHECK(cells[i].result.total_words == cells[base].result.total_words);
      DSWM_CHECK(cells[i].result.avg_err == cells[base].result.avg_err);
    }
  }

  const char* path = BenchJsonPath();
  if (path != nullptr) WriteJson(path, workload, cells);
  return 0;
}

}  // namespace
}  // namespace dswm::bench

int main() { return dswm::bench::Main(); }
