// Figure 4(a)-(c): maximum per-site space usage (words) vs epsilon, one
// panel per dataset, at the default m = 20.
//
// Paper shapes to look for: space grows as epsilon shrinks for every
// protocol; DA1 pays an extra d^2; on WIKI the large norm ratio R limits
// mEH compression so DA2's space decays slowly with epsilon, while the
// samplers' resident space *drops* at small epsilon because most rows are
// shipped to the coordinator.

#include <algorithm>
#include <cstdio>

#include "harness.h"

int main() {
  using namespace dswm;
  using namespace dswm::bench;

  const int m = 20;
  // Space reaches steady state after ~1.5 windows; truncated streams
  // keep this bench fast without changing the panels' shape.
  const Workload workloads[] = {Truncate(MakePamapWorkload(), 0.6),
                                Truncate(MakeSyntheticWorkload(), 0.6),
                                Truncate(MakeWikiWorkload(), 0.6)};
  const char* panel[] = {"(a)", "(b)", "(c)"};

  for (int w = 0; w < 3; ++w) {
    const Workload& workload = workloads[w];
    std::printf("== Figure 4%s: max site space vs epsilon on %s (m=%d) ==\n",
                panel[w], workload.name.c_str(), m);
    std::printf("%-10s", "algorithm");
    for (double eps : EpsilonSweep()) std::printf(" %12.3f", eps);
    std::printf("\n");
    std::vector<Algorithm> algorithms = PaperAlgorithms();
    if (workload.name == "WIKI") {
      algorithms.erase(std::remove(algorithms.begin(), algorithms.end(),
                                   Algorithm::kDa1),
                       algorithms.end());
    }
    for (Algorithm a : algorithms) {
      std::printf("%-10s", AlgorithmName(a));
      for (double eps : EpsilonSweep()) {
        const RunResult r = RunCell(a, workload, eps, m);
        std::printf(" %12ld", r.max_site_space_words);
        std::fflush(stdout);
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  return 0;
}
