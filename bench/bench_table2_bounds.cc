// Table II validation: the asymptotic communication/space bounds.
//
//   Priority/ES sampling : comm ~ (d/eps^2) log(1/eps) log(NR) [+ m terms]
//   DA1 / DA2            : comm ~ (m d / eps) log(NR)
//   space per site       : ~ (d/eps^2) log(NR) for all protocols
//
// This bench measures communication and space across an epsilon sweep and
// a site sweep on SYNTHETIC and prints the measured growth factors next
// to the factors the bounds predict: sampling comm should scale like the
// l(eps) ~ log(1/eps)/eps^2 ratio and stay flat in m; deterministic comm
// should scale like 1/eps and linearly in m.

#include <cmath>
#include <cstdio>

#include "harness.h"

int main() {
  using namespace dswm;
  using namespace dswm::bench;

  const Workload workload = MakeSyntheticWorkload();
  const int m0 = 20;

  std::printf("== Table II validation on %s ==\n\n", workload.name.c_str());

  // ---- epsilon scaling at fixed m ------------------------------------
  const double eps_hi = 0.2;
  const double eps_lo = 0.05;
  auto ell = [](double e) { return std::log(1.0 / e) / (e * e); };
  const double predict_sampling = ell(eps_lo) / ell(eps_hi);
  const double predict_det = eps_hi / eps_lo;

  std::printf("epsilon scaling: comm(eps=%.2f) / comm(eps=%.2f), m=%d\n",
              eps_lo, eps_hi, m0);
  std::printf("%-10s %10s %10s\n", "algorithm", "measured", "predicted");
  for (Algorithm a : {Algorithm::kPwor, Algorithm::kEswor, Algorithm::kDa1,
                      Algorithm::kDa2}) {
    const RunResult hi = RunCell(a, workload, eps_hi, m0);
    const RunResult lo = RunCell(a, workload, eps_lo, m0);
    const double measured = static_cast<double>(lo.total_words) /
                            static_cast<double>(hi.total_words);
    const bool sampling = a == Algorithm::kPwor || a == Algorithm::kEswor;
    std::printf("%-10s %10.2f %10.2f\n", AlgorithmName(a), measured,
                sampling ? predict_sampling : predict_det);
    std::fflush(stdout);
  }

  // ---- site scaling at fixed epsilon ---------------------------------
  const double eps0 = 0.1;
  const int m_lo = 5;
  const int m_hi = 40;
  std::printf("\nsite scaling: comm(m=%d) / comm(m=%d), eps=%.2f\n", m_hi,
              m_lo, eps0);
  std::printf("%-10s %10s %10s\n", "algorithm", "measured", "predicted");
  for (Algorithm a : {Algorithm::kPwor, Algorithm::kEswor, Algorithm::kDa1,
                      Algorithm::kDa2}) {
    const RunResult lo = RunCell(a, workload, eps0, m_lo);
    const RunResult hi = RunCell(a, workload, eps0, m_hi);
    const double measured = static_cast<double>(hi.total_words) /
                            static_cast<double>(lo.total_words);
    const bool sampling = a == Algorithm::kPwor || a == Algorithm::kEswor;
    std::printf("%-10s %10.2f %10.2f\n", AlgorithmName(a), measured,
                sampling ? 1.0
                         : static_cast<double>(m_hi) / m_lo);
    std::fflush(stdout);
  }

  // ---- space scaling in epsilon ---------------------------------------
  std::printf("\nspace scaling: space(eps=%.2f) / space(eps=%.2f), m=%d "
              "(bound ~ d/eps^2 log NR => predicted %.1f, capped by the\n"
              "window: a site cannot store more than its active rows)\n",
              eps_lo, eps_hi, m0,
              (eps_hi * eps_hi) / (eps_lo * eps_lo));
  std::printf("%-10s %12s %12s %10s\n", "algorithm", "space_hi_eps",
              "space_lo_eps", "ratio");
  for (Algorithm a : {Algorithm::kPwor, Algorithm::kDa1, Algorithm::kDa2}) {
    const RunResult hi = RunCell(a, workload, eps_hi, m0);
    const RunResult lo = RunCell(a, workload, eps_lo, m0);
    std::printf("%-10s %12ld %12ld %10.2f\n", AlgorithmName(a),
                hi.max_site_space_words, lo.max_site_space_words,
                static_cast<double>(lo.max_site_space_words) /
                    static_cast<double>(hi.max_site_space_words));
    std::fflush(stdout);
  }
  return 0;
}
