// Microbenchmarks of the sketching substrate: Frequent Directions
// throughput (amortized append incl. shrinks), IWMT input, and the
// priority-sampling site path.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "harness.h"
#include "core/iwmt.h"
#include "sampling/priority.h"
#include "sampling/site_queue.h"
#include "sketch/frequent_directions.h"

namespace dswm {
namespace {

void BM_FrequentDirectionsAppend(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const int ell = static_cast<int>(state.range(1));
  FrequentDirections fd(d, ell);
  Rng rng(1);
  std::vector<double> row(d);
  for (auto _ : state) {
    for (int j = 0; j < d; ++j) row[j] = rng.NextGaussian();
    fd.Append(row.data());
    if (fd.input_mass() > 1e12) fd.Reset();  // keep state bounded
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FrequentDirectionsAppend)
    ->Args({43, 20})
    ->Args({128, 20})
    ->Args({128, 60})
    ->Args({512, 40});

void BM_IwmtInput(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  IwmtProtocol iwmt(d, 40);
  Rng rng(2);
  std::vector<double> row(d);
  std::vector<IwmtOutput> outs;
  double mass = 0.0;
  for (auto _ : state) {
    for (int j = 0; j < d; ++j) row[j] = rng.NextGaussian();
    mass += NormSquared(row.data(), d);
    outs.clear();
    iwmt.Input(row.data(), 0.025 * mass, &outs);
    benchmark::DoNotOptimize(outs.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IwmtInput)->Arg(43)->Arg(128)->Arg(512);

void BM_PrioritySitePath(benchmark::State& state) {
  // The per-row site work of PWOR: draw key, dominance-note, enqueue.
  const int d = static_cast<int>(state.range(0));
  SiteSampleQueue queue(400, 1000000);
  Rng rng(3);
  TimedRow row;
  row.values.assign(d, 0.0);
  Timestamp t = 0;
  for (auto _ : state) {
    ++t;
    for (int j = 0; j < d; ++j) row.values[j] = rng.NextGaussian();
    row.timestamp = t;
    const double w = row.NormSquared();
    const double key = DrawKey(SamplingScheme::kPriority, w, &rng);
    const double bv = KeyBucketValue(SamplingScheme::kPriority, key);
    queue.NoteArrival(bv);
    queue.Enqueue(row, key, bv);
    queue.Expire(t);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PrioritySitePath)->Arg(43)->Arg(512);

}  // namespace
}  // namespace dswm

int main(int argc, char** argv) { return dswm::bench::BenchmarkMain(argc, argv); }
