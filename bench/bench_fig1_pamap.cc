// Figure 1: results on the PAMAP(-like) dataset.
//   (a) avg error vs epsilon        (b) communication vs epsilon
//   (c) avg error vs communication  (d) max error vs communication
//   (e) error vs #sites             (f) communication vs #sites
// Panels (a)-(d) come from the epsilon sweep at m=20; panels (e)-(f) from
// the site sweep at eps=0.05. Every series prints avg_err, max_err, and
// msg (words per window), so each panel is a column pair of this output.

#include "harness.h"

int main() {
  using namespace dswm;
  using namespace dswm::bench;
  const Workload workload = MakePamapWorkload();
  RunFigure(workload, PaperAlgorithms(), EpsilonSweep(), SiteSweep(),
            /*default_eps=*/0.05, /*default_sites=*/20);
  return 0;
}
