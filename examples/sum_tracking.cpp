// Deterministic SUM tracking over distributed sliding windows
// (Algorithm 3 / Theorem 1) as a standalone tool: monitoring windowed
// traffic volume across routers with provable relative error and
// logarithmic communication.

#include <cmath>
#include <cstdio>
#include <deque>

#include "common/rng.h"
#include "core/sum_tracker.h"

int main() {
  using namespace dswm;

  const int sites = 12;          // routers
  const Timestamp window = 5000; // "last 5000 ticks" of traffic
  const double eps = 0.05;

  SumTracker tracker(sites, window, eps);

  // Exact reference (what a naive coordinator would need all data for).
  std::deque<std::pair<double, Timestamp>> exact;
  auto exact_sum = [&](Timestamp now) {
    while (!exact.empty() && exact.front().second <= now - window) {
      exact.pop_front();
    }
    double s = 0.0;
    for (const auto& [w, t] : exact) s += w;
    return s;
  };

  Rng rng(2024);
  double worst_rel_err = 0.0;
  long items = 0;
  std::printf("%-10s %16s %16s %10s\n", "tick", "exact_sum", "estimate",
              "rel_err");
  for (Timestamp t = 1; t <= 60000; ++t) {
    tracker.AdvanceTime(t);
    // Bursty traffic: quiet baseline with heavy-tailed flare-ups.
    const int arrivals = rng.NextDouble() < 0.002 ? 50 : 1;
    for (int a = 0; a < arrivals; ++a) {
      const int site = static_cast<int>(rng.NextBelow(sites));
      const double bytes = std::exp(2.0 * rng.NextGaussian());
      const dswm::Status status = tracker.Observe(site, bytes, t);
      if (!status.ok()) {
        std::fprintf(stderr, "Observe failed: %s\n", status.message().c_str());
        return 1;
      }
      exact.push_back({bytes, t});
      ++items;
    }
    if (t % 6000 == 0) {
      const double truth = exact_sum(t);
      const double est = tracker.Estimate();
      const double rel = truth > 0 ? std::fabs(est - truth) / truth : 0.0;
      worst_rel_err = std::max(worst_rel_err, rel);
      std::printf("%-10lld %16.1f %16.1f %10.4f\n",
                  static_cast<long long>(t), truth, est, rel);
    }
  }

  std::printf("\nitems observed      : %ld\n", items);
  std::printf("worst relative error: %.4f (guarantee %.2f)\n", worst_rel_err,
              eps);
  std::printf("words communicated  : %ld (naive shipping: %ld)\n",
              tracker.Comm().TotalWords(), items);
  std::printf("max site space      : %ld words (window holds ~%lld items)\n",
              tracker.MaxSiteSpaceWords(),
              static_cast<long long>(items * window / 60000));
  return worst_rel_err <= eps ? 0 : 2;
}
