// Quickstart: track a covariance sketch of two distributed streams over a
// sliding window, query it, and compare against the exact window.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/example_quickstart

#include <cstdio>

#include "core/tracker_factory.h"
#include "sketch/covariance.h"
#include "stream/synthetic.h"
#include "window/exact_window.h"

int main() {
  using namespace dswm;

  // A 32-dimensional stream of ~20k rows; window of 4000 ticks.
  SyntheticConfig data_config;
  data_config.rows = 20000;
  data_config.dim = 32;
  data_config.seed = 3;
  SyntheticGenerator generator(data_config);

  TrackerConfig config;
  config.dim = data_config.dim;
  config.num_sites = 4;
  config.window = 4000;
  config.epsilon = 0.1;
  config.seed = 17;

  StatusOr<std::unique_ptr<DistributedTracker>> tracker_or =
      MakeTracker(Algorithm::kDa2, config);
  if (!tracker_or.ok()) {
    std::fprintf(stderr, "failed to build tracker: %s\n",
                 tracker_or.status().ToString().c_str());
    return 1;
  }
  DistributedTracker& tracker = *tracker_or.value();

  // Exact reference so we can show the achieved covariance error.
  ExactWindow exact(config.dim, config.window);

  Rng site_rng(99);
  int observed = 0;
  while (auto row = generator.Next()) {
    const int site = static_cast<int>(site_rng.NextBelow(config.num_sites));
    const Status observed_status = tracker.Observe(site, *row);
    if (!observed_status.ok()) {
      std::fprintf(stderr, "observe failed: %s\n",
                   observed_status.ToString().c_str());
      return 1;
    }
    exact.Add(*row);
    exact.Advance(row->timestamp);
    ++observed;
  }

  const Matrix sketch = tracker.Query().Rows();
  const double err = CovarianceErrorOfSketch(
      exact.Covariance(), sketch, exact.FrobeniusSquared());

  std::printf("algorithm        : %s\n", tracker.Name().c_str());
  std::printf("rows observed    : %d\n", observed);
  std::printf("active rows      : %d\n", exact.size());
  std::printf("sketch rows      : %d x %d\n", sketch.rows(), sketch.cols());
  std::printf("covariance error : %.5f  (target epsilon %.2f)\n", err,
              config.epsilon);
  std::printf("communication    : %ld words (%ld messages)\n",
              tracker.Comm().TotalWords(), tracker.Comm().messages);
  std::printf("max site space   : %ld words\n", tracker.MaxSiteSpaceWords());
  return err <= config.epsilon ? 0 : 2;
}
