// Approximate-PCA change detection over a distributed sliding window
// (the paper's motivating application 1, Section I).
//
// A reference PCA basis is frozen from an early published snapshot
// version; afterwards the current window's version is compared to it
// (analytics/change_detector.h). The SYNTHETIC generator rotates its
// signal subspace between segments, so the subspace distance must spike
// at the segment boundaries -- which is what this example prints.
//
// Serving-tier flow: the tracker's query results are published into a
// SnapshotStore as immutable versions; the detector is constructed from
// a pinned reference version and updated with later pinned versions.

#include <algorithm>
#include <cstdio>

#include "analytics/change_detector.h"
#include "core/tracker_factory.h"
#include "serve/snapshot_store.h"
#include "stream/synthetic.h"

int main() {
  using namespace dswm;

  const int d = 48;

  SyntheticConfig data_config;
  data_config.rows = 30000;  // three 10k segments with rotating subspaces
  data_config.dim = d;
  data_config.seed = 21;
  SyntheticGenerator generator(data_config);

  TrackerConfig config;
  config.dim = d;
  config.num_sites = 8;
  config.window = 3000;
  config.epsilon = 0.1;
  auto tracker_or = MakeTracker(Algorithm::kDa2, config);
  if (!tracker_or.ok()) {
    std::fprintf(stderr, "%s\n", tracker_or.status().ToString().c_str());
    return 1;
  }
  DistributedTracker& tracker = *tracker_or.value();

  serve::StoreOptions store_options;
  store_options.pca_components = 8;
  serve::SnapshotStore store(store_options);
  serve::SnapshotReader reader(&store);

  ChangeDetectorOptions options;
  options.components = 8;
  options.calibration_updates = 3;
  StatusOr<ChangeDetector> detector = Status::FailedPrecondition("pending");

  Rng site_rng(5);
  std::printf("%-8s %-12s %-9s %s\n", "row", "distance", "change?", "signal");
  int i = 0;
  int first_flag_row = 0;
  while (auto row = generator.Next()) {
    const Status observed = tracker.Observe(
        static_cast<int>(site_rng.NextBelow(config.num_sites)), *row);
    if (!observed.ok()) {
      std::fprintf(stderr, "%s\n", observed.ToString().c_str());
      return 1;
    }
    ++i;
    if (i == 6000) {  // freeze the reference basis inside segment 1
      const Status published =
          store.Publish(tracker.Query(), row->timestamp, config.window);
      if (!published.ok()) {
        std::fprintf(stderr, "%s\n", published.ToString().c_str());
        return 1;
      }
      detector = ChangeDetector::FromSnapshot(reader.Pin(), options);
      if (!detector.ok()) {
        std::fprintf(stderr, "%s\n", detector.status().ToString().c_str());
        return 1;
      }
    }
    if (i >= 7000 && i % 1000 == 0) {
      const Status published =
          store.Publish(tracker.Query(), row->timestamp, config.window);
      if (!published.ok()) continue;
      const auto dist = detector.value().Update(reader.Pin());
      if (!dist.ok()) continue;
      const bool flagged = detector.value().change_detected();
      if (flagged && first_flag_row == 0) first_flag_row = i;
      const int bars = static_cast<int>(dist.value() * 40);
      std::printf("%-8d %-12.4f %-9s %.*s\n", i, dist.value(),
                  flagged ? "CHANGE" : "-", bars,
                  "########################################");
    }
  }

  std::printf("\nbaseline distance : %.4f\n", detector.value().baseline());
  std::printf("first change flag : row %d (segment 2 starts at row 10000)\n",
              first_flag_row);
  const bool good =
      first_flag_row > 10000 && first_flag_row <= 14000;
  std::printf("detected at the segment boundary: %s\n", good ? "YES" : "no");
  return good ? 0 : 2;
}
