// Sliding-window anomaly detection from a covariance sketch (the paper's
// motivating application 2, Section I; cf. Huang & Kasiviswanathan [15]).
//
// The ridge-leverage score f(A, x) = x^T (A^T A + lambda I)^{-1} x is
// expensive on the window matrix A but cheap on a tracked sketch B with
// small covariance error (analytics/anomaly_scorer.h). This example
// tracks B with PWOR-ALL over 6 sites, injects outliers, and shows that
// sketch-based scores separate them just like exact-window scores.
//
// Serving-tier flow: query results are published into a SnapshotStore as
// immutable versions; a scorer is built from a pinned SnapshotRef and
// shares the version's sealed eigendecomposition (computed exactly once
// at publish time) with every other consumer of the same version.

#include <cstdio>
#include <vector>

#include "analytics/anomaly_scorer.h"
#include "core/covariance_estimate.h"
#include "core/tracker_factory.h"
#include "serve/snapshot_store.h"
#include "stream/pamap_like.h"
#include "window/exact_window.h"

int main() {
  using namespace dswm;

  PamapLikeConfig data_config;
  data_config.rows = 20000;
  data_config.seed = 33;
  PamapLikeGenerator generator(data_config);
  const int d = data_config.dim;

  TrackerConfig config;
  config.dim = d;
  config.num_sites = 6;
  config.window = 4000;
  config.epsilon = 0.1;
  auto tracker_or = MakeTracker(Algorithm::kPworAll, config);
  if (!tracker_or.ok()) {
    std::fprintf(stderr, "%s\n", tracker_or.status().ToString().c_str());
    return 1;
  }
  DistributedTracker& tracker = *tracker_or.value();
  ExactWindow exact(d, config.window);

  Rng rng(101);
  std::vector<std::vector<double>> probes_normal;
  std::vector<std::vector<double>> probes_anomalous;

  int i = 0;
  Timestamp last_time = 0;
  while (auto row = generator.Next()) {
    ++i;
    const Status observed = tracker.Observe(
        static_cast<int>(rng.NextBelow(config.num_sites)), *row);
    if (!observed.ok()) {
      std::fprintf(stderr, "%s\n", observed.ToString().c_str());
      return 1;
    }
    exact.Add(*row);
    exact.Advance(row->timestamp);
    last_time = row->timestamp;

    if (i > 15000 && i % 500 == 0) {
      probes_normal.push_back(row->values);  // in-distribution point
      // An anomaly: a direction the window's activity never excites.
      std::vector<double> odd(d, 0.0);
      for (int j = 0; j < d; ++j) {
        odd[j] = (j % 2 == 0 ? 1.0 : -1.0) * (20.0 + rng.NextDouble());
      }
      probes_anomalous.push_back(std::move(odd));
    }
  }

  // Publish the tracked sketch and the exact window as snapshot versions.
  // Publication seals each estimate (gram, eigenbasis, PSD root computed
  // once); the scorers below borrow that shared cache via a pinned ref.
  serve::SnapshotStore sketch_store;
  serve::SnapshotStore exact_store;
  const Status published_sketch =
      sketch_store.Publish(tracker.Query(), last_time, config.window);
  const Status published_exact = exact_store.Publish(
      CovarianceEstimate::FromCovariance(exact.Covariance()), last_time,
      config.window);
  if (!published_sketch.ok() || !published_exact.ok()) {
    std::fprintf(stderr, "publish failed\n");
    return 1;
  }

  serve::SnapshotReader sketch_reader(&sketch_store);
  serve::SnapshotReader exact_reader(&exact_store);
  const serve::SnapshotRef sketch_ref = sketch_reader.Pin();
  const serve::SnapshotRef exact_ref = exact_reader.Pin();
  const auto sketch_scorer = AnomalyScorer::FromSnapshot(sketch_ref);
  const auto exact_scorer = AnomalyScorer::FromSnapshot(exact_ref);
  if (!sketch_scorer.ok() || !exact_scorer.ok()) {
    std::fprintf(stderr, "scorer construction failed\n");
    return 1;
  }

  auto mean_score = [](const AnomalyScorer& s,
                       const std::vector<std::vector<double>>& xs) {
    double sum = 0.0;
    for (const auto& x : xs) sum += s.Score(x.data());
    return xs.empty() ? 0.0 : sum / xs.size();
  };

  const double sk_norm = mean_score(sketch_scorer.value(), probes_normal);
  const double sk_anom = mean_score(sketch_scorer.value(), probes_anomalous);
  const double ex_norm = mean_score(exact_scorer.value(), probes_normal);
  const double ex_anom = mean_score(exact_scorer.value(), probes_anomalous);

  std::printf(
      "scores are f(.,x) = x^T (C + lambda I)^{-1} x, higher = more "
      "anomalous\n\n");
  std::printf("%-22s %14s %14s %10s\n", "scorer", "normal(mean)",
              "anomaly(mean)", "sep.ratio");
  std::printf("%-22s %14.4g %14.4g %10.1f\n", "exact window", ex_norm,
              ex_anom, ex_anom / ex_norm);
  std::printf("%-22s %14.4g %14.4g %10.1f\n", "tracked sketch", sk_norm,
              sk_anom, sk_anom / sk_norm);
  std::printf("\nsketch comm: %ld words vs naive centralization %ld words\n",
              tracker.Comm().TotalWords(),
              static_cast<long>(data_config.rows) * (d + 1));

  const bool ok = sk_anom > 5.0 * sk_norm;
  std::printf("anomalies separated by sketch scorer: %s\n",
              ok ? "YES" : "no");
  return ok ? 0 : 2;
}
