// Sliding-window anomaly detection from a covariance sketch (the paper's
// motivating application 2, Section I; cf. Huang & Kasiviswanathan [15]).
//
// The ridge-leverage score f(A, x) = x^T (A^T A + lambda I)^{-1} x is
// expensive on the window matrix A but cheap on a tracked sketch B with
// small covariance error (analytics/anomaly_scorer.h). This example
// tracks B with PWOR-ALL over 6 sites, injects outliers, and shows that
// sketch-based scores separate them just like exact-window scores.

#include <cstdio>
#include <vector>

#include "analytics/anomaly_scorer.h"
#include "core/covariance_estimate.h"
#include "core/tracker_factory.h"
#include "stream/pamap_like.h"
#include "window/exact_window.h"

int main() {
  using namespace dswm;

  PamapLikeConfig data_config;
  data_config.rows = 20000;
  data_config.seed = 33;
  PamapLikeGenerator generator(data_config);
  const int d = data_config.dim;

  TrackerConfig config;
  config.dim = d;
  config.num_sites = 6;
  config.window = 4000;
  config.epsilon = 0.1;
  auto tracker_or = MakeTracker(Algorithm::kPworAll, config);
  if (!tracker_or.ok()) {
    std::fprintf(stderr, "%s\n", tracker_or.status().ToString().c_str());
    return 1;
  }
  DistributedTracker& tracker = *tracker_or.value();
  ExactWindow exact(d, config.window);

  Rng rng(101);
  std::vector<std::vector<double>> probes_normal;
  std::vector<std::vector<double>> probes_anomalous;

  int i = 0;
  while (auto row = generator.Next()) {
    ++i;
    const Status observed = tracker.Observe(
        static_cast<int>(rng.NextBelow(config.num_sites)), *row);
    if (!observed.ok()) {
      std::fprintf(stderr, "%s\n", observed.ToString().c_str());
      return 1;
    }
    exact.Add(*row);
    exact.Advance(row->timestamp);

    if (i > 15000 && i % 500 == 0) {
      probes_normal.push_back(row->values);  // in-distribution point
      // An anomaly: a direction the window's activity never excites.
      std::vector<double> odd(d, 0.0);
      for (int j = 0; j < d; ++j) {
        odd[j] = (j % 2 == 0 ? 1.0 : -1.0) * (20.0 + rng.NextDouble());
      }
      probes_anomalous.push_back(std::move(odd));
    }
  }

  // FromEstimate shares the snapshot's cached eigendecomposition with any
  // other consumer (e.g. a Rows() conversion) instead of recomputing it.
  const CovarianceEstimate estimate = tracker.Query();
  const auto sketch_scorer = AnomalyScorer::FromEstimate(estimate);
  const auto exact_scorer = AnomalyScorer::FromCovariance(exact.Covariance());
  if (!sketch_scorer.ok() || !exact_scorer.ok()) {
    std::fprintf(stderr, "scorer construction failed\n");
    return 1;
  }

  auto mean_score = [](const AnomalyScorer& s,
                       const std::vector<std::vector<double>>& xs) {
    double sum = 0.0;
    for (const auto& x : xs) sum += s.Score(x.data());
    return xs.empty() ? 0.0 : sum / xs.size();
  };

  const double sk_norm = mean_score(sketch_scorer.value(), probes_normal);
  const double sk_anom = mean_score(sketch_scorer.value(), probes_anomalous);
  const double ex_norm = mean_score(exact_scorer.value(), probes_normal);
  const double ex_anom = mean_score(exact_scorer.value(), probes_anomalous);

  std::printf(
      "scores are f(.,x) = x^T (C + lambda I)^{-1} x, higher = more "
      "anomalous\n\n");
  std::printf("%-22s %14s %14s %10s\n", "scorer", "normal(mean)",
              "anomaly(mean)", "sep.ratio");
  std::printf("%-22s %14.4g %14.4g %10.1f\n", "exact window", ex_norm,
              ex_anom, ex_anom / ex_norm);
  std::printf("%-22s %14.4g %14.4g %10.1f\n", "tracked sketch", sk_norm,
              sk_anom, sk_anom / sk_norm);
  std::printf("\nsketch comm: %ld words vs naive centralization %ld words\n",
              tracker.Comm().TotalWords(),
              static_cast<long>(data_config.rows) * (d + 1));

  const bool ok = sk_anom > 5.0 * sk_norm;
  std::printf("anomalies separated by sketch scorer: %s\n",
              ok ? "YES" : "no");
  return ok ? 0 : 2;
}
